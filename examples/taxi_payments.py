"""Case study: total NYC taxi payments per window (paper §VI-A).

Streams synthesized DEBS-2015-style ride records through the paper's
4-layer edge topology at a 10 % sampling fraction and answers the
paper's query — "what is the total payment for taxi fares in NYC at
each time window?" — with error bounds, comparing against the exact
answer computed over the full stream.

Run:  python examples/taxi_payments.py
"""

from repro.experiments.base import ExperimentScale
from repro.experiments.fig11 import taxi_workload
from repro.metrics.report import Table
from repro.system import PipelineConfig, StatisticalRunner


def main() -> None:
    scale = ExperimentScale(rate_scale=0.1, windows=8, seed=2013)
    schedule, generators = taxi_workload(scale)
    config = PipelineConfig(
        sampling_fraction=0.10,
        window_seconds=1.0,
        seed=scale.seed,
        # Move every inter-node batch over pub/sub topics instead of
        # in-process callbacks; a seeded run is transport-invariant,
        # so the table below is identical either way.
        transport="broker",
    )
    runner = StatisticalRunner(config, schedule, generators)

    table = Table(
        "Total taxi payment per 1 s window (10% sampling fraction)",
        ["window", "approx total ($)", "error bound", "exact total ($)",
         "loss"],
    )
    for _ in range(scale.windows):
        outcome = runner.run_window()
        table.add_row(
            outcome.window_index,
            f"{outcome.approx_sum.value:,.0f}",
            f"±{outcome.approx_sum.error:,.0f} (95%)",
            f"{outcome.exact_sum:,.0f}",
            f"{outcome.approxiot_loss:.3f}%",
        )
    print(table.render())
    print()
    print(f"rides per window   : ~{int(schedule.total_rate)}")
    print("sub-streams        : one per borough "
          f"({', '.join(sorted(schedule.rates))})")


if __name__ == "__main__":
    main()
