"""Benchmark: regenerate Fig. 9 (latency vs window size)."""

from repro.experiments import fig9


def test_bench_fig9(benchmark, bench_scale, results_sink):
    """Asserts ApproxIoT latency grows with the window while SRS is flat."""
    text = benchmark.pedantic(
        fig9.main, args=(bench_scale,), rounds=1, iterations=1
    )
    results_sink(text)

    points = fig9.run_fig9([0.5, 4.0], bench_scale)
    small, large = points
    assert large.approxiot / small.approxiot > 3.0
    # SRS is flat vs window size (0.98x at bench scale). The bound
    # leaves headroom for quick scale, where the saturating placement
    # puts the SRS root load exactly at its service rate and the
    # schedule-exact emission accumulator (no per-chunk round-down
    # slack) lets marginal queueing drift upward over longer runs.
    assert large.srs / small.srs < 2.0
    assert large.srs / small.srs < (large.approxiot / small.approxiot) / 3.0
