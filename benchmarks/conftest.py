"""Shared fixtures for the figure benchmarks.

Every benchmark regenerates one figure of the paper's evaluation at
bench scale, asserts the paper's qualitative shape, and appends the
rendered paper-style table to ``benchmarks/results.txt`` so a
``pytest benchmarks/ --benchmark-only`` run leaves the full set of
series on disk.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.experiments.base import ExperimentScale

RESULTS_PATH = pathlib.Path(__file__).parent / "results.txt"


@pytest.fixture(scope="session")
def bench_scale() -> ExperimentScale:
    """The sizing every figure benchmark runs at."""
    return ExperimentScale.bench()


@pytest.fixture(scope="session")
def results_sink():
    """Append rendered tables to the session's results file."""
    RESULTS_PATH.write_text("")

    def sink(text: str) -> None:
        with RESULTS_PATH.open("a") as handle:
            handle.write(text + "\n\n")

    return sink
