"""Sanity tests for the exception hierarchy and package surface."""

import pytest

import repro
from repro import errors


class TestHierarchy:
    def test_all_derive_from_repro_error(self):
        exception_types = [
            obj
            for obj in vars(errors).values()
            if isinstance(obj, type) and issubclass(obj, Exception)
        ]
        assert len(exception_types) >= 15
        for exc_type in exception_types:
            assert issubclass(exc_type, errors.ReproError)

    def test_broker_family(self):
        for exc in (
            errors.TopicExistsError,
            errors.UnknownTopicError,
            errors.UnknownPartitionError,
            errors.OffsetOutOfRangeError,
            errors.ConsumerGroupError,
        ):
            assert issubclass(exc, errors.BrokerError)

    def test_simulation_family(self):
        assert issubclass(errors.ClockError, errors.SimulationError)
        assert issubclass(errors.NetworkError, errors.SimulationError)

    def test_streams_family(self):
        assert issubclass(errors.TopologyError, errors.StreamsError)
        assert issubclass(errors.StateStoreError, errors.StreamsError)

    def test_one_catch_all(self):
        with pytest.raises(errors.ReproError):
            raise errors.SamplingError("x")


class TestPackageSurface:
    def test_version_string(self):
        major, _minor, _patch = repro.__version__.split(".")
        assert int(major) >= 1

    def test_top_level_exports_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None

    def test_core_exports_resolve(self):
        from repro import core

        for name in core.__all__:
            assert getattr(core, name) is not None

    def test_system_exports_resolve(self):
        from repro import system

        for name in system.__all__:
            assert getattr(system, name) is not None

    def test_queries_exports_resolve(self):
        from repro import queries

        for name in queries.__all__:
            assert getattr(queries, name) is not None
