"""Unit tests for the typed scenario events."""

import pytest

from repro.errors import ConfigurationError
from repro.scenarios.events import (
    LinkDegrade,
    NodeChurn,
    RateBurst,
    RateRamp,
    RateWave,
    SkewDrift,
)
from repro.scenarios.scenario import Scenario


class TestIntervals:
    def test_rejects_negative_start(self):
        with pytest.raises(ConfigurationError):
            RateBurst(-1, 3, 2.0)

    def test_rejects_empty_interval(self):
        with pytest.raises(ConfigurationError):
            RateBurst(3, 3, 2.0)
        with pytest.raises(ConfigurationError):
            NodeChurn(5, 2, ("l1-0",))


class TestRateBurst:
    def test_multiplier_inside_and_outside(self):
        burst = RateBurst(2, 5, 4.0)
        assert burst.multiplier(1) == 1.0
        assert burst.multiplier(2) == 4.0
        assert burst.multiplier(4) == 4.0
        assert burst.multiplier(5) == 1.0

    def test_rejects_nonpositive_factor(self):
        with pytest.raises(ConfigurationError):
            RateBurst(0, 1, 0.0)


class TestRateRamp:
    def test_linear_interpolation(self):
        ramp = RateRamp(2, 6, 1.0, 3.0)
        assert ramp.multiplier(2) == pytest.approx(1.0)
        assert ramp.multiplier(4) == pytest.approx(2.0)
        assert ramp.multiplier(5) == pytest.approx(2.5)
        assert ramp.multiplier(6) == 1.0  # handed over, not held

    def test_downward_ramp(self):
        ramp = RateRamp(0, 4, 4.0, 1.0)
        assert ramp.multiplier(0) == pytest.approx(4.0)
        assert ramp.multiplier(2) == pytest.approx(2.5)

    def test_rejects_nonpositive_factors(self):
        with pytest.raises(ConfigurationError):
            RateRamp(0, 2, 0.0, 1.0)


class TestRateWave:
    def test_trough_peak_trough(self):
        wave = RateWave(0, 13, period_windows=12.0, low=0.5, high=1.5)
        assert wave.multiplier(0) == pytest.approx(0.5)
        assert wave.multiplier(6) == pytest.approx(1.5)
        assert wave.multiplier(12) == pytest.approx(0.5)

    def test_outside_is_identity(self):
        wave = RateWave(2, 6, period_windows=4.0, low=0.5, high=1.5)
        assert wave.multiplier(1) == 1.0
        assert wave.multiplier(6) == 1.0

    def test_rejects_bad_shape(self):
        with pytest.raises(ConfigurationError):
            RateWave(0, 4, period_windows=0.0, low=0.5, high=1.5)
        with pytest.raises(ConfigurationError):
            RateWave(0, 4, period_windows=4.0, low=1.5, high=0.5)


class TestSkewDrift:
    def test_progress_is_clamped_linear(self):
        drift = SkewDrift(2, 6, {"A": 1.0})
        assert drift.progress(0) == 0.0
        assert drift.progress(2) == 0.0
        assert drift.progress(4) == pytest.approx(0.5)
        assert drift.progress(6) == 1.0
        assert drift.progress(100) == 1.0  # the new mix holds

    def test_shares_normalize(self):
        drift = SkewDrift(0, 2, {"A": 2.0, "B": 2.0})
        assert drift.normalized_shares() == {"A": 0.5, "B": 0.5}

    def test_rejects_bad_shares(self):
        with pytest.raises(ConfigurationError):
            SkewDrift(0, 2, {})
        with pytest.raises(ConfigurationError):
            SkewDrift(0, 2, {"A": -0.5, "B": 1.5})
        with pytest.raises(ConfigurationError):
            SkewDrift(0, 2, {"A": 0.0})


class TestNodeChurn:
    def test_offline_inside_interval_only(self):
        churn = NodeChurn(1, 3, ("l1-0", "source-2"))
        assert churn.offline(0) == ()
        assert churn.offline(1) == ("l1-0", "source-2")
        assert churn.offline(3) == ()

    def test_root_cannot_churn(self):
        with pytest.raises(ConfigurationError, match="root"):
            NodeChurn(0, 2, ("root",))

    def test_needs_nodes(self):
        with pytest.raises(ConfigurationError):
            NodeChurn(0, 2, ())


class TestLinkDegrade:
    def test_active_window_range(self):
        event = LinkDegrade(2, 4, ("source-0",), loss=0.5)
        assert not event.active(1)
        assert event.active(2)
        assert not event.active(4)

    def test_rejects_invalid_loss(self):
        with pytest.raises(ConfigurationError):
            LinkDegrade(0, 2, loss=1.0)
        with pytest.raises(ConfigurationError):
            LinkDegrade(0, 2, loss=-0.1)

    def test_rejects_noop(self):
        with pytest.raises(ConfigurationError, match="no-op"):
            LinkDegrade(0, 2, ("source-0",))

    def test_root_has_no_uplink(self):
        with pytest.raises(ConfigurationError, match="root"):
            LinkDegrade(0, 2, ("root",), loss=0.1)

    def test_rejects_negative_delay(self):
        with pytest.raises(ConfigurationError):
            LinkDegrade(0, 2, delay_windows=-1)


class TestScenario:
    def test_rejects_events_past_the_end(self):
        with pytest.raises(ConfigurationError, match="window"):
            Scenario("x", "desc", windows=3, events=(RateBurst(0, 5, 2.0),))

    def test_rejects_empty_name_and_bad_length(self):
        with pytest.raises(ConfigurationError):
            Scenario("", "desc", windows=3)
        with pytest.raises(ConfigurationError):
            Scenario("x", "desc", windows=0)

    def test_is_steady_and_event_filter(self):
        steady = Scenario("s", "d", windows=2)
        assert steady.is_steady
        busy = Scenario(
            "b", "d", windows=6,
            events=(RateBurst(0, 2, 2.0), NodeChurn(1, 3, ("l1-0",))),
        )
        assert not busy.is_steady
        assert len(busy.events_of(RateBurst)) == 1
        assert len(busy.events_of(RateBurst, NodeChurn)) == 2
