"""Typed scenario events — the vocabulary of dynamic workloads.

A scenario is a seeded timeline of these events. Every event is a
frozen dataclass spanning a half-open window interval
``[start_window, end_window)``; what happens inside the interval is
the event's *shape*:

* :class:`RateBurst` / :class:`RateRamp` / :class:`RateWave` —
  modulate the arrival-rate schedule (flash crowds, ramp-ups,
  diurnal cycles).
* :class:`SkewDrift` — re-weight the sub-stream population mix
  mid-run while preserving the total offered rate (the workload the
  paper's stratified reservoirs exist to survive).
* :class:`NodeChurn` — edge nodes (sources or sampling nodes) leave
  the tree for the interval and rejoin after it; live traffic
  re-parents around the hole.
* :class:`LinkDegrade` — a node's uplink loses batches, straggles
  (delivers a window late) or degrades in netem terms (RTT / rate
  factors for :mod:`repro.simnet.netem`-backed runs).

Events are pure data: all interpretation — composition, validation
against a concrete tree/schedule, per-window state — lives in
:mod:`repro.scenarios.engine`. Because an event is a pure function of
the window index, any process (worker shards included) can recompute
the same timeline independently, which is what keeps scenario runs
deterministic and ``inline == multiprocess``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Mapping, Union

from repro.errors import ConfigurationError

__all__ = [
    "RateBurst",
    "RateRamp",
    "RateWave",
    "SkewDrift",
    "NodeChurn",
    "LinkDegrade",
    "ScenarioEvent",
]


def _check_interval(start_window: int, end_window: int) -> None:
    """Shared event-interval validation (half-open, non-empty)."""
    if start_window < 0:
        raise ConfigurationError(
            f"event start_window must be >= 0, got {start_window}"
        )
    if end_window <= start_window:
        raise ConfigurationError(
            f"event interval must be non-empty: "
            f"[{start_window}, {end_window})"
        )


@dataclass(frozen=True, slots=True)
class RateBurst:
    """Multiply arrival rates by a constant factor for an interval.

    Attributes:
        start_window: First window (inclusive) the burst applies to.
        end_window: First window after the burst (exclusive).
        factor: Rate multiplier (> 0); ``4.0`` quadruples the load.
        substreams: Sub-streams the burst applies to (``None`` = all).
    """

    start_window: int
    end_window: int
    factor: float
    substreams: tuple[str, ...] | None = None

    def __post_init__(self) -> None:
        _check_interval(self.start_window, self.end_window)
        if self.factor <= 0:
            raise ConfigurationError(
                f"burst factor must be positive, got {self.factor}"
            )

    def multiplier(self, window: int) -> float:
        """The burst's rate multiplier at one window (1.0 outside)."""
        if self.start_window <= window < self.end_window:
            return self.factor
        return 1.0


@dataclass(frozen=True, slots=True)
class RateRamp:
    """Linearly interpolate the rate multiplier across an interval.

    At window ``w`` in ``[start_window, end_window)`` the multiplier is
    ``start_factor + t * (end_factor - start_factor)`` with
    ``t = (w - start_window) / (end_window - start_window)`` — the ramp
    *approaches* ``end_factor`` but hands over to whatever follows at
    ``end_window`` (stack a :class:`RateBurst` after an up-ramp to hold
    the plateau).

    Attributes:
        start_window: First window (inclusive) of the ramp.
        end_window: First window after the ramp (exclusive).
        start_factor: Multiplier at ``start_window`` (> 0).
        end_factor: Multiplier the ramp approaches (> 0).
        substreams: Sub-streams the ramp applies to (``None`` = all).
    """

    start_window: int
    end_window: int
    start_factor: float
    end_factor: float
    substreams: tuple[str, ...] | None = None

    def __post_init__(self) -> None:
        _check_interval(self.start_window, self.end_window)
        if self.start_factor <= 0 or self.end_factor <= 0:
            raise ConfigurationError(
                f"ramp factors must be positive, got "
                f"{self.start_factor} -> {self.end_factor}"
            )

    def multiplier(self, window: int) -> float:
        """The ramp's rate multiplier at one window (1.0 outside)."""
        if not self.start_window <= window < self.end_window:
            return 1.0
        t = (window - self.start_window) / (self.end_window - self.start_window)
        return self.start_factor + t * (self.end_factor - self.start_factor)


@dataclass(frozen=True, slots=True)
class RateWave:
    """A sinusoidal rate cycle — the diurnal day/night pattern.

    The multiplier starts at ``low`` (trough) at ``start_window``,
    peaks at ``high`` half a period later and returns to ``low`` each
    ``period_windows`` windows:
    ``mid - amplitude * cos(2π (w - start) / period)``.

    Attributes:
        start_window: First window (inclusive) of the cycle.
        end_window: First window after the cycle (exclusive).
        period_windows: Length of one full cycle, in windows (> 0).
        low: Trough multiplier (> 0).
        high: Peak multiplier (>= low).
        substreams: Sub-streams the wave applies to (``None`` = all).
    """

    start_window: int
    end_window: int
    period_windows: float
    low: float
    high: float
    substreams: tuple[str, ...] | None = None

    def __post_init__(self) -> None:
        _check_interval(self.start_window, self.end_window)
        if self.period_windows <= 0:
            raise ConfigurationError(
                f"wave period must be positive, got {self.period_windows}"
            )
        if self.low <= 0 or self.high < self.low:
            raise ConfigurationError(
                f"wave needs 0 < low <= high, got "
                f"low={self.low}, high={self.high}"
            )

    def multiplier(self, window: int) -> float:
        """The wave's rate multiplier at one window (1.0 outside)."""
        if not self.start_window <= window < self.end_window:
            return 1.0
        mid = (self.high + self.low) / 2.0
        amplitude = (self.high - self.low) / 2.0
        phase = 2.0 * math.pi * (window - self.start_window) / self.period_windows
        return mid - amplitude * math.cos(phase)


@dataclass(frozen=True, slots=True)
class SkewDrift:
    """Drift the sub-stream population mix while preserving total rate.

    Over ``[start_window, end_window)`` the per-sub-stream *shares* of
    the total offered rate interpolate linearly from the schedule's
    baseline mix toward ``to_shares``; from ``end_window`` on the new
    mix holds for the rest of the run (drift does not snap back). The
    total rate is preserved at every window, so drift changes *which*
    sub-streams carry the volume, not how much volume there is —
    exactly the condition under which plain SRS starts missing
    newly-rare strata.

    Attributes:
        start_window: First window (inclusive) of the drift.
        end_window: Window at which ``to_shares`` is fully reached.
        to_shares: Target share per sub-stream. Shares are normalized;
            sub-streams absent from the mapping get share 0 at the end
            of the drift.
    """

    start_window: int
    end_window: int
    to_shares: Mapping[str, float]

    def __post_init__(self) -> None:
        _check_interval(self.start_window, self.end_window)
        if not self.to_shares:
            raise ConfigurationError("drift needs at least one target share")
        if any(share < 0 for share in self.to_shares.values()):
            raise ConfigurationError(
                f"drift shares must be >= 0, got {dict(self.to_shares)}"
            )
        if sum(self.to_shares.values()) <= 0:
            raise ConfigurationError("drift shares must sum to > 0")
        # Freeze the mapping so the event stays hashable/immutable.
        object.__setattr__(self, "to_shares", dict(self.to_shares))

    def progress(self, window: int) -> float:
        """Drift progress in [0, 1] at one window (1.0 after the end)."""
        if window < self.start_window:
            return 0.0
        if window >= self.end_window:
            return 1.0
        return (window - self.start_window) / (
            self.end_window - self.start_window
        )

    def normalized_shares(self) -> dict[str, float]:
        """The target mix with shares scaled to sum to 1."""
        total = sum(self.to_shares.values())
        return {s: share / total for s, share in self.to_shares.items()}


@dataclass(frozen=True, slots=True)
class NodeChurn:
    """Named edge nodes leave the tree for an interval, then rejoin.

    An offline *source* stops emitting (its volume is genuinely lost —
    ground truth shrinks with it). An offline *sampling* node is routed
    around: traffic that would cross it re-parents to its nearest live
    ancestor, which keeps every batch's ``(W_in, items)`` pair intact —
    weights ride with the batches, so the Eq. 8 count invariant (and
    the :class:`~repro.core.weights.WeightMap` stale-weight rule for
    per-node samplers) survive re-parenting unchanged. The root cannot
    churn.

    Attributes:
        start_window: First window (inclusive) the nodes are offline.
        end_window: First window (exclusive) after the nodes rejoin.
        nodes: Tree node names (e.g. ``("source-5", "l1-1")``).
    """

    start_window: int
    end_window: int
    nodes: tuple[str, ...]

    def __post_init__(self) -> None:
        _check_interval(self.start_window, self.end_window)
        if not self.nodes:
            raise ConfigurationError("churn needs at least one node")
        if "root" in self.nodes:
            raise ConfigurationError(
                "the root (datacenter) cannot churn; every scenario "
                "needs a live query endpoint"
            )
        object.__setattr__(self, "nodes", tuple(self.nodes))

    def offline(self, window: int) -> tuple[str, ...]:
        """The nodes this event takes offline at one window."""
        if self.start_window <= window < self.end_window:
            return self.nodes
        return ()


@dataclass(frozen=True, slots=True)
class LinkDegrade:
    """Degrade the uplink of named nodes for an interval.

    Three degradation axes, freely combined:

    * ``loss`` — each batch crossing the uplink is dropped with this
      probability (``tc netem loss``-style; seeded, so runs stay
      reproducible). Dropped data is *destroyed*: the estimator cannot
      see it, so expect loss spikes beyond the error bound on degraded
      windows.
    * ``delay_windows`` — the straggler axis: batches crossing the
      uplink arrive that many windows late, smearing mass into later
      windows (paired under/over-shoot spikes). Batches whose delay
      outlives the run are neither sampled nor counted as dropped —
      they are still in flight when the run ends.
    * ``rtt_factor`` / ``rate_factor`` — netem-view knobs: multiply the
      link's round-trip time and capacity for simnet-backed runs (see
      :meth:`repro.scenarios.engine.ScenarioEngine.netem_overrides`).
      The algorithmic engine has no wire clock, so these two only
      shape the derived :class:`~repro.simnet.netem.NetemConfig`.

    Attributes:
        start_window: First window (inclusive) of the degradation.
        end_window: First window (exclusive) after recovery.
        nodes: Nodes whose uplink degrades (``None`` = every uplink).
        loss: Per-batch drop probability in ``[0, 1)``.
        delay_windows: Whole windows of straggler delay (>= 0).
        rtt_factor: RTT multiplier for the netem view (> 0).
        rate_factor: Capacity multiplier for the netem view (> 0).
    """

    start_window: int
    end_window: int
    nodes: tuple[str, ...] | None = None
    loss: float = 0.0
    delay_windows: int = 0
    rtt_factor: float = 1.0
    rate_factor: float = 1.0

    def __post_init__(self) -> None:
        _check_interval(self.start_window, self.end_window)
        if not 0.0 <= self.loss < 1.0:
            raise ConfigurationError(
                f"link loss must be in [0, 1), got {self.loss}"
            )
        if self.delay_windows < 0:
            raise ConfigurationError(
                f"delay_windows must be >= 0, got {self.delay_windows}"
            )
        if self.rtt_factor <= 0 or self.rate_factor <= 0:
            raise ConfigurationError(
                f"netem factors must be positive, got "
                f"rtt_factor={self.rtt_factor}, rate_factor={self.rate_factor}"
            )
        if self.loss == 0.0 and self.delay_windows == 0 \
                and self.rtt_factor == 1.0 and self.rate_factor == 1.0:
            raise ConfigurationError(
                "LinkDegrade with no loss, delay or netem factor is a no-op"
            )
        if self.nodes is not None:
            if not self.nodes:
                raise ConfigurationError(
                    "LinkDegrade nodes must be None (all uplinks) or non-empty"
                )
            if "root" in self.nodes:
                raise ConfigurationError(
                    "the root has no uplink to degrade"
                )
            object.__setattr__(self, "nodes", tuple(self.nodes))

    def active(self, window: int) -> bool:
        """Whether the degradation applies at one window."""
        return self.start_window <= window < self.end_window


#: Every event type a :class:`~repro.scenarios.scenario.Scenario`
#: timeline may carry.
ScenarioEvent = Union[
    RateBurst, RateRamp, RateWave, SkewDrift, NodeChurn, LinkDegrade
]
