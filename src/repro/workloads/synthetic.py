"""Synthetic sub-stream generators (paper §V-A).

The microbenchmarks use four Gaussian sub-streams — A(μ=10, σ=5),
B(1000, 50), C(10000, 500), D(100000, 5000) — and four Poisson
sub-streams — A(λ=10), B(100), C(1000), D(10000). Each generator
produces :class:`~repro.core.items.StreamItem` values tagged with its
sub-stream name.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Sequence

from repro.core.columns import ColumnBuffer, ColumnarBatch
from repro.core.items import StreamItem
from repro.errors import WorkloadError

__all__ = [
    "GaussianSubstream",
    "PoissonSubstream",
    "paper_gaussian_substreams",
    "paper_poisson_substreams",
]


@dataclass
class GaussianSubstream:
    """Generates normally-distributed item values for one stratum."""

    name: str
    mu: float
    sigma: float
    item_bytes: int = 100
    _staging: ColumnBuffer = field(
        default_factory=ColumnBuffer, init=False, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        if self.sigma < 0:
            raise WorkloadError(f"sigma must be >= 0, got {self.sigma}")

    def _draw_values(self, count: int, rng: random.Random) -> Sequence[float]:
        """The one value-draw loop both data planes share.

        Keeping a single copy is what makes cross-plane parity
        structural: both ``generate`` and ``generate_columns`` consume
        exactly this entropy, in this order. Draws land in the
        generator's reusable staging buffer (no per-window list
        allocation); the returned view is only valid until the next
        draw — ``generate_columns`` copies it out via
        ``ColumnBuffer.column`` before the batch leaves.
        """
        if count < 0:
            raise WorkloadError(f"count must be >= 0, got {count}")
        staged = self._staging.writable(count)
        for index in range(count):
            staged[index] = rng.gauss(self.mu, self.sigma)
        return staged

    def generate(
        self, count: int, rng: random.Random, emitted_at: float = 0.0
    ) -> list[StreamItem]:
        """Draw ``count`` items at the given emission time."""
        return [
            StreamItem(self.name, value, emitted_at, self.item_bytes)
            for value in self._draw_values(count, rng)
        ]

    def generate_columns(
        self, count: int, rng: random.Random, emitted_at: float = 0.0
    ) -> ColumnarBatch:
        """Draw ``count`` values straight into a columnar batch.

        Same entropy as :meth:`generate` (they share the draw loop),
        so seeded runs emit identical values on either data plane; no
        :class:`StreamItem` objects are ever created, and the staging
        buffer is copied out so successive windows never alias.
        """
        self._draw_values(count, rng)
        return ColumnarBatch.single(
            self.name, self._staging.column(count), emitted_at,
            self.item_bytes,
        )

    @property
    def expected_value(self) -> float:
        """Mean of the value distribution."""
        return self.mu


@dataclass
class PoissonSubstream:
    """Generates Poisson-distributed item values for one stratum.

    Uses numpy-free inversion/normal-approximation sampling: exact
    inversion for small λ, normal approximation (rounded, clamped at 0)
    for large λ, which matches the paper's use of λ up to 10^7 without
    pathological generation cost.
    """

    name: str
    lam: float
    item_bytes: int = 100
    _approximation_threshold: float = 1000.0
    _staging: ColumnBuffer = field(
        default_factory=ColumnBuffer, init=False, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        if self.lam <= 0:
            raise WorkloadError(f"lambda must be positive, got {self.lam}")

    def _draw(self, rng: random.Random) -> float:
        if self.lam >= self._approximation_threshold:
            value = rng.gauss(self.lam, self.lam ** 0.5)
            return float(max(0, round(value)))
        # Knuth inversion for small lambda.
        import math

        threshold = math.exp(-self.lam)
        k = 0
        product = rng.random()
        while product > threshold:
            k += 1
            product *= rng.random()
        return float(k)

    def _draw_values(self, count: int, rng: random.Random) -> Sequence[float]:
        """The one value-draw loop both data planes share.

        Draws land in the reusable staging buffer; see
        :class:`~repro.core.columns.ColumnBuffer` for the reuse
        contract.
        """
        if count < 0:
            raise WorkloadError(f"count must be >= 0, got {count}")
        staged = self._staging.writable(count)
        for index in range(count):
            staged[index] = self._draw(rng)
        return staged

    def generate(
        self, count: int, rng: random.Random, emitted_at: float = 0.0
    ) -> list[StreamItem]:
        """Draw ``count`` items at the given emission time."""
        return [
            StreamItem(self.name, value, emitted_at, self.item_bytes)
            for value in self._draw_values(count, rng)
        ]

    def generate_columns(
        self, count: int, rng: random.Random, emitted_at: float = 0.0
    ) -> ColumnarBatch:
        """Draw ``count`` values straight into a columnar batch.

        Same entropy as :meth:`generate` (they share the draw loop),
        so seeded runs emit identical values on either data plane; the
        staging buffer is copied out so successive windows never alias.
        """
        self._draw_values(count, rng)
        return ColumnarBatch.single(
            self.name, self._staging.column(count), emitted_at,
            self.item_bytes,
        )

    @property
    def expected_value(self) -> float:
        """Mean of the value distribution."""
        return self.lam


def paper_gaussian_substreams() -> list[GaussianSubstream]:
    """The four Gaussian sub-streams of §V-A."""
    return [
        GaussianSubstream("A", 10.0, 5.0),
        GaussianSubstream("B", 1000.0, 50.0),
        GaussianSubstream("C", 10000.0, 500.0),
        GaussianSubstream("D", 100000.0, 5000.0),
    ]


def paper_poisson_substreams() -> list[PoissonSubstream]:
    """The four Poisson sub-streams of §V-A."""
    return [
        PoissonSubstream("A", 10.0),
        PoissonSubstream("B", 100.0),
        PoissonSubstream("C", 1000.0),
        PoissonSubstream("D", 10000.0),
    ]
