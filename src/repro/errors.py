"""Exception hierarchy for the ApproxIoT reproduction.

Every exception raised by this library derives from :class:`ReproError`,
so callers can catch one base class. Subsystems define narrower types
here rather than in their own modules so the hierarchy stays visible in
a single place.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class ConfigurationError(ReproError):
    """An invalid configuration value was supplied."""


class SamplingError(ReproError):
    """A sampling primitive was misused (e.g. non-positive reservoir)."""


class EstimationError(ReproError):
    """An estimator could not produce a result (e.g. empty sample)."""


class BrokerError(ReproError):
    """Base class for pub/sub substrate errors."""


class TopicExistsError(BrokerError):
    """A topic with the requested name already exists."""


class UnknownTopicError(BrokerError):
    """A produce/fetch referenced a topic that does not exist."""


class UnknownPartitionError(BrokerError):
    """A produce/fetch referenced a partition that does not exist."""


class OffsetOutOfRangeError(BrokerError):
    """A fetch requested an offset outside the log's range."""


class ConsumerGroupError(BrokerError):
    """Invalid consumer-group operation (e.g. unknown member)."""


class StreamsError(ReproError):
    """Base class for stream-engine errors."""


class TopologyError(StreamsError):
    """The processing topology is malformed (cycle, dangling node...)."""


class StateStoreError(StreamsError):
    """Invalid state-store access."""


class SimulationError(ReproError):
    """Base class for discrete-event simulator errors."""


class ClockError(SimulationError):
    """An event was scheduled in the past or the clock was misused."""


class NetworkError(SimulationError):
    """The simulated network was misconfigured or misaddressed."""


class TreeError(ReproError):
    """The logical sampling tree is malformed."""


class PipelineError(ReproError):
    """The assembled system pipeline was driven incorrectly."""


class ShardTimeoutError(PipelineError):
    """A worker shard missed its watchdog deadline (hung or stalled)."""


class InjectedFaultError(PipelineError):
    """An injected fault fired inside a worker shard (test harness)."""


class WorkloadError(ReproError):
    """A workload generator received invalid parameters."""
