"""Quickstart: weighted hierarchical sampling in a few lines.

Builds the paper's basic scenario by hand: two edge nodes sampling
sub-streams and forwarding to a root node that answers a SUM query
with rigorous error bounds, then checks the estimate against the
ground truth.

Run:  python examples/quickstart.py
"""

import random

from repro.core import RootNode, SamplingNode, StreamItem


def main() -> None:
    rng = random.Random(7)

    # A root (datacenter) node with a budget of 400 items per interval.
    root = RootNode("datacenter", sample_size=400, rng=rng)

    # Two edge nodes, each forwarding its sampled sub-streams to the root.
    edge_west = SamplingNode("edge-west", 800, root.receive, rng=rng)
    edge_east = SamplingNode("edge-east", 800, root.receive, rng=rng)

    # Sensors produce two sub-streams with very different magnitudes:
    # a chatty low-value one and a quiet high-value one. Stratified
    # sampling keeps both represented.
    chatty = [StreamItem("temperature", rng.gauss(21.0, 2.0)) for _ in range(9_000)]
    quiet = [StreamItem("power-grid", rng.gauss(50_000.0, 1_500.0)) for _ in range(120)]

    edge_west.receive_raw(chatty[:4500] + quiet[:60])
    edge_east.receive_raw(chatty[4500:] + quiet[60:])

    # One time interval passes: every node samples and forwards.
    edge_west.close_interval()
    edge_east.close_interval()
    root.close_interval()

    result = root.run_query()
    exact = sum(i.value for i in chatty) + sum(i.value for i in quiet)

    print("ApproxIoT quickstart")
    print("--------------------")
    print(f"items emitted        : {len(chatty) + len(quiet)}")
    print(f"items at the root    : {result.sampled_items}")
    print(f"recovered item count : {result.estimated_items:.1f}  (exact by Eq. 8)")
    print(f"approximate SUM      : {result.sum}")
    print(f"exact SUM            : {exact:,.1f}")
    loss = abs(result.sum.value - exact) / exact
    print(f"accuracy loss        : {100 * loss:.4f}%")
    print(f"bound covers exact   : {result.sum.contains(exact)}")


if __name__ == "__main__":
    main()
